(** Descriptive statistics over float samples.

    Used by the experiment harness to report the averages the paper
    tables quote ("the times presented here are the averages of the
    recorded times", §2.1) along with dispersion measures the paper
    omits. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation; 0 when count < 2 *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val mean : float list -> float
(** @raise Invalid_argument on the empty list. *)

val stddev : float list -> float
(** Sample standard deviation; 0 when fewer than two samples.
    @raise Invalid_argument on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p samples] with [p] in [0,1], linear interpolation between
    closest ranks.  @raise Invalid_argument on the empty list or [p]
    outside [0,1]. *)

val histogram : ?bins:int -> float list -> (float * float * int) list
(** Equal-width buckets [(lo, hi, count)] spanning [min, max]; the last
    bucket is inclusive of the maximum.  A constant sample collapses to
    one bucket.  Default 10 bins.
    @raise Invalid_argument on the empty list or non-positive [bins]. *)

val pp_histogram : Format.formatter -> (float * float * int) list -> unit
(** One bucket per line with an ASCII bar scaled to the fullest bucket. *)

val pp_summary : Format.formatter -> summary -> unit

(** Incremental accumulator (Welford) for streaming measurement. *)
module Accumulator : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val stddev : t -> float
  (** 0 when count < 2. *)
end
