(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the repository (workload generation,
    coordinator choice, failure schedules in property tests) flows through
    this module so that every experiment and every figure is exactly
    replayable from a seed.  The generator is splitmix64, which has a
    64-bit state, passes BigCrush, and is trivially splittable. *)

type t
(** A mutable generator.  Generators are cheap; split one per independent
    stream rather than sharing a single stream across concerns. *)

val create : int -> t
(** [create seed] returns a generator deterministically derived from
    [seed].  Two generators created from the same seed produce identical
    streams. *)

val mix : int -> int
(** [mix n] is a stateless hash of [n] (the splitmix64 finalizer),
    returned as a non-negative [int].  Deterministic across runs; used
    for seedless hashing such as hash-sharded placement. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays the same
    stream as [t] would from this point. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [lo, hi].
    Requires [lo <= hi]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val choose : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  @raise Invalid_argument on []. *)

val choose_weighted : t -> ('a * float) list -> 'a
(** [choose_weighted t alternatives] picks an alternative with probability
    proportional to its weight.  Weights must be non-negative and sum to a
    positive value.  @raise Invalid_argument otherwise. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
