type t = { capacity : int; bits : Bytes.t }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; bits = Bytes.make ((capacity + 7) / 8) '\000' }

let capacity t = t.capacity

let copy t = { capacity = t.capacity; bits = Bytes.copy t.bits }

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let b = Bytes.get_uint8 t.bits (i lsr 3) in
  Bytes.set_uint8 t.bits (i lsr 3) (b lor (1 lsl (i land 7)))

let clear t i =
  check t i;
  let b = Bytes.get_uint8 t.bits (i lsr 3) in
  Bytes.set_uint8 t.bits (i lsr 3) (b land lnot (1 lsl (i land 7)))

let assign t i b = if b then set t i else clear t i

let mem t i =
  check t i;
  Bytes.get_uint8 t.bits (i lsr 3) land (1 lsl (i land 7)) <> 0

let is_empty t =
  let n = Bytes.length t.bits in
  let rec loop i = i >= n || (Bytes.get t.bits i = '\000' && loop (i + 1)) in
  loop 0

let popcount_byte b =
  let b = b - ((b lsr 1) land 0x55) in
  let b = (b land 0x33) + ((b lsr 2) land 0x33) in
  (b + (b lsr 4)) land 0x0F

let cardinal t =
  let n = Bytes.length t.bits in
  let count = ref 0 in
  for i = 0 to n - 1 do
    count := !count + popcount_byte (Bytes.get_uint8 t.bits i)
  done;
  !count

let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let union_into ~dst src =
  if dst.capacity <> src.capacity then invalid_arg "Bitset.union_into: capacity mismatch";
  for i = 0 to Bytes.length dst.bits - 1 do
    Bytes.set_uint8 dst.bits i (Bytes.get_uint8 dst.bits i lor Bytes.get_uint8 src.bits i)
  done

let equal a b = a.capacity = b.capacity && Bytes.equal a.bits b.bits

(* Members in increasing order, visiting only the set bits: zero bytes
   are skipped whole, and within a non-zero byte each iteration isolates
   the lowest set bit ([b land -b]) and clears it ([b land (b-1)]), so
   the cost is O(bytes + popcount) rather than O(capacity) tests. *)
let iter f t =
  let n = Bytes.length t.bits in
  for i = 0 to n - 1 do
    let b = ref (Bytes.get_uint8 t.bits i) in
    if !b <> 0 then begin
      let base = i lsl 3 in
      while !b <> 0 do
        let lowest = !b land - !b in
        f (base + popcount_byte (lowest - 1));
        b := !b land (!b - 1)
      done
    end
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity members =
  let t = create capacity in
  List.iter (set t) members;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') Format.pp_print_int)
    (to_list t)
