(** Terminal line charts for the paper's figures.

    Figures 1-3 of the paper plot "number of fail-locks set" against
    "number of transactions" for one to four sites.  This module renders
    such series as a fixed-size character grid with axes, tick labels and
    a per-series legend, so the figure reproductions are visible straight
    from [dune exec bench/main.exe]. *)

type series = {
  label : string;
  glyph : char;  (** character used to draw this series *)
  points : (float * float) list;  (** (x, y), need not be sorted *)
}

type t

val create : ?width:int -> ?height:int -> title:string -> x_label:string -> y_label:string -> unit -> t
(** [width]/[height] are the plot-area size in characters (defaults 72 and
    20).  @raise Invalid_argument if either is smaller than 2. *)

val add_series : t -> series -> unit
(** Series are drawn in insertion order; later series overwrite earlier
    glyphs on collisions. *)

val render : t -> string
(** Renders grid, axes, tick labels, title and legend.  An empty chart
    (no points at all) renders a frame with a "(no data)" note. *)

val print : t -> unit
